// Dedup: near-duplicate detection in a document corpus — the information
// retrieval use case from the paper's introduction (matching Web of Science
// and Scopus records is its reference [1]).
//
// Documents are simulated as TF-IDF-style sparse term vectors projected to a
// dense 256-dim representation. A fraction of the corpus consists of edited
// re-submissions (near duplicates). The pipeline indexes everything, then
// flags each document whose nearest other document lies within a distance
// threshold, and reports precision/recall of duplicate detection.
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"dblsh"
)

const (
	docs      = 30_000
	dupRate   = 0.10 // 10% of the corpus are edited copies
	dim       = 256
	vocab     = 5000
	termsPer  = 60
	threshold = 2.0 // distance below which a pair is declared duplicate
)

func main() {
	rng := rand.New(rand.NewSource(99))

	// Random projection of a sparse term space into dim dense coordinates —
	// every vocabulary term gets a random dense direction; a document is the
	// weighted sum of its terms' directions.
	termDirs := make([][]float32, vocab)
	for t := range termDirs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		termDirs[t] = v
	}

	embed := func(terms map[int]float64) []float32 {
		v := make([]float32, dim)
		for t, wgt := range terms {
			dir := termDirs[t]
			for j := range v {
				v[j] += float32(wgt) * dir[j]
			}
		}
		return v
	}

	randomDoc := func() map[int]float64 {
		terms := make(map[int]float64, termsPer)
		for len(terms) < termsPer {
			terms[rng.Intn(vocab)] = 0.5 + rng.Float64()
		}
		return terms
	}

	// Edit a document: change ~3% of its terms, the way a re-submission
	// tweaks wording. Two swapped terms put the copy at distance ≈ 32 from
	// its source, versus ≈ 190 between unrelated documents.
	editDoc := func(src map[int]float64) map[int]float64 {
		out := make(map[int]float64, len(src))
		for t, w := range src {
			if rng.Float64() < 0.03 {
				out[rng.Intn(vocab)] = w
			} else {
				out[t] = w
			}
		}
		return out
	}

	corpus := make([][]float32, 0, docs)
	dupOf := make([]int, 0, docs) // -1 when original
	originals := make([]map[int]float64, 0, docs)
	for len(corpus) < docs {
		if len(corpus) > 0 && rng.Float64() < dupRate {
			src := rng.Intn(len(originals))
			if originals[src] != nil {
				corpus = append(corpus, embed(editDoc(originals[src])))
				dupOf = append(dupOf, src)
				originals = append(originals, nil)
				continue
			}
		}
		doc := randomDoc()
		originals = append(originals, doc)
		corpus = append(corpus, embed(doc))
		dupOf = append(dupOf, -1)
	}

	idx, err := dblsh.New(corpus, dblsh.Options{C: 1.5, T: 50, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	s := idx.NewSearcher()
	var st dblsh.Stats

	// Scale the threshold by the embedding norm of a typical document so the
	// declared cut-off tracks the projection's geometry.
	scale := 0.0
	for i := 0; i < 100; i++ {
		scale += norm(corpus[rng.Intn(len(corpus))])
	}
	scale /= 100
	cut := threshold / 5 * scale // ≈ 40% of a typical document norm

	// Both sides of a duplicate pair legitimately have a near-duplicate:
	// mark the sources too so precision isn't charged for finding them.
	involved := make([]bool, len(corpus))
	for i, src := range dupOf {
		if src >= 0 {
			involved[i] = true
			involved[src] = true
		}
	}

	var tp, fp, fn int
	var cands int
	for i, v := range corpus {
		// The filter pushes self-exclusion into candidate verification: the
		// query point never costs budget and k drops from 2 to 1. The radius
		// cap stops the ladder once any hit would be too far to be a
		// duplicate anyway.
		self := i
		res, err := s.SearchOpts(v, 1,
			dblsh.WithFilter(func(id int) bool { return id != self }),
			dblsh.WithMaxRadius(2*cut),
			dblsh.WithStats(&st))
		if err != nil {
			log.Fatal(err)
		}
		cands += st.Candidates
		var nearest dblsh.Result
		found := false
		if len(res) > 0 {
			nearest, found = res[0], true
		}
		isDup := involved[i]
		flagged := found && nearest.Dist < cut
		switch {
		case flagged && isDup:
			tp++
		case flagged && !isDup:
			fp++
		case !flagged && isDup:
			fn++
		}
	}
	precision := 1.0
	if tp+fp > 0 {
		precision = float64(tp) / float64(tp+fp)
	}
	recall := 0.0
	if tp+fn > 0 {
		recall = float64(tp) / float64(tp+fn)
	}
	fmt.Printf("corpus: %d docs, %d edited re-submissions\n", docs, tp+fn)
	fmt.Printf("duplicate detection: precision=%.3f recall=%.3f (threshold %.2f)\n",
		precision, recall, cut)
	fmt.Printf("\nEvery document was deduplicated with one filtered, radius-capped ANN\n")
	fmt.Printf("query (%.1f exact distances each on average) — the linear-scan\n",
		float64(cands)/float64(docs))
	fmt.Printf("alternative would compute %d×%d distances.\n", docs, docs)
}

func norm(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}
